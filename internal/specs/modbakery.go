package specs

import "bakerypp/internal/gcl"

// ModBakery is the strawman for the paper's Section 4 approach 1: take
// classic Bakery and "just" compute tickets with modulo arithmetic,
//
//	number[i] := (1 + maximum(number[0..N-1])) mod (M+1)
//
// while keeping the plain (number, id) comparison. Registers now never hold
// a value above M, so the no-overflow invariant trivially holds — but mutual
// exclusion is lost: once tickets wrap, an old large ticket and a new
// wrapped small ticket misorder, and two processes reach the critical
// section together. The model checker exhibits a concrete counterexample
// (experiment E9), substantiating the paper's point that sound bounded
// variants need more than modulo arithmetic (Jayanti et al. also redefine
// the comparison operator, which this strawman deliberately does not).
func ModBakery(n, m int) *gcl.Prog {
	p := gcl.New("modbakery", n)
	p.SetM(int64(m))
	p.SharedArray("choosing", n, 0)
	p.SharedArray("number", n, 0)
	p.Own("choosing")
	p.Own("number")
	p.LocalVar("j", 0)
	p.SetSymmetry(gcl.FullSymmetry)
	p.PidLocal("j", "t1", "t2", "t3", "t4")

	p.Label("ncs", gcl.Goto("ch1").WithTag("try"))
	p.Label("ch1", gcl.Goto("ch2", gcl.SetSelf("choosing", gcl.C(1))))
	p.Label("ch2", gcl.Goto("ch3",
		gcl.SetSelf("number",
			gcl.Mod(gcl.Add(gcl.C(1), gcl.MaxSh("number")), gcl.C(m+1))),
	))
	p.Label("ch3", gcl.Goto("t1",
		gcl.SetSelf("choosing", gcl.C(0)),
		gcl.SetL("j", gcl.C(0)),
	).WithTag("doorway-done"))
	trialLoop(p, n, gcl.SetSelf("number", gcl.C(0)))
	return p.MustBuild()
}
