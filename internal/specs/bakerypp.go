package specs

import "bakerypp/internal/gcl"

// BakeryPP is Algorithm 2 of the paper: Bakery++ for cfg.N processes with
// register capacity M = cfg.M. It is classic Bakery plus two conditional
// statements:
//
//	L1: if exists q such that number[q] >= M then goto L1
//	    choosing[i] := 1
//	    number[i] := maximum(number[0], ..., number[N-1])
//	    if number[i] >= M then
//	        number[i] := 0; choosing[i] := 0; goto L1
//	    else
//	        number[i] := number[i] + 1
//	    choosing[i] := 0
//	    ... trial loop, critical section, number[i] := 0 as in Bakery
//
// Configuration knobs (DESIGN.md ablations):
//   - Fine: per-register maximum scan.
//   - SplitReset: the overflow reset writes number[i] and choosing[i] in
//     two separate atomic steps.
//   - EqCheck: compare with = M instead of >= M (valid when reads never
//     return values above M, per the Section 5 remark).
//   - NoGate: omit the L1 existential gate; the pre-increment check alone
//     establishes the no-overflow theorem.
func BakeryPP(cfg Config) *gcl.Prog {
	n, m := cfg.N, cfg.M
	name := "bakerypp"
	switch {
	case cfg.Fine:
		name = "bakerypp-fine"
	case cfg.SplitReset:
		name = "bakerypp-splitreset"
	case cfg.EqCheck:
		name = "bakerypp-eqcheck"
	case cfg.NoGate:
		name = "bakerypp-nogate"
	}
	p := gcl.New(name, n)
	p.SetM(int64(m))
	p.SharedArray("choosing", n, 0)
	p.SharedArray("number", n, 0)
	p.Own("choosing")
	p.Own("number")
	p.LocalVar("j", 0)
	if cfg.Fine {
		p.LocalVar("tmp", 0)
		p.LocalVar("k", 0)
	}
	// Fully symmetric like Bakery: ids occur only as array indices and
	// scan cursors (j, live in the trial loop where ch3 resets it, and k
	// in the fine-grained doorway scan); tmp holds a ticket value, not an
	// id.
	p.SetSymmetry(gcl.FullSymmetry)
	p.PidLocal("j", "t1", "t2", "t3", "t4")
	if cfg.Fine {
		p.PidLocal("k", "m1", "m2")
	}

	numI := gcl.ShSelf("number")

	afterNcs := "l1"
	if cfg.NoGate {
		afterNcs = "ch1"
	}
	p.Label("ncs", gcl.Goto(afterNcs).WithTag("try"))
	if !cfg.NoGate {
		// L1 blocks while any number[q] >= M; the goto-L1 spin of the
		// paper is the standard await encoding.
		p.Label("l1", gcl.Br(
			gcl.AndN(n, func(q int) gcl.Expr {
				return gcl.Lt(gcl.ShI("number", gcl.C(q)), gcl.C(m))
			}),
			"ch1",
		))
	}
	p.Label("ch1", gcl.Goto("ch2", gcl.SetSelf("choosing", gcl.C(1))))
	if cfg.Fine {
		p.Label("ch2", gcl.Goto("m1", gcl.SetL("tmp", gcl.C(0)), gcl.SetL("k", gcl.C(0))))
		fineMax(p, n, "ch2w")
		p.Label("ch2w", gcl.Goto("chk", gcl.SetSelf("number", gcl.L("tmp"))))
	} else {
		p.Label("ch2", gcl.Goto("chk", gcl.SetSelf("number", gcl.MaxSh("number"))))
	}

	tooBig := gcl.Ge(numI, gcl.C(m))
	if cfg.EqCheck {
		tooBig = gcl.Eq(numI, gcl.C(m))
	}
	resetTarget := "rst"
	p.Label("chk",
		gcl.Br(tooBig, resetTarget),
		gcl.Br(gcl.Not(tooBig), "ch3",
			gcl.SetSelf("number", gcl.Add(numI, gcl.C(1)))),
	)
	backTo := "l1"
	if cfg.NoGate {
		backTo = "ch1"
	}
	if cfg.SplitReset {
		p.Label("rst", gcl.Goto("rst2", gcl.SetSelf("number", gcl.C(0))).WithTag("reset"))
		p.Label("rst2", gcl.Goto(backTo, gcl.SetSelf("choosing", gcl.C(0))))
	} else {
		p.Label("rst", gcl.Goto(backTo,
			gcl.SetSelf("number", gcl.C(0)),
			gcl.SetSelf("choosing", gcl.C(0)),
		).WithTag("reset"))
	}
	p.Label("ch3", gcl.Goto("t1",
		gcl.SetSelf("choosing", gcl.C(0)),
		gcl.SetL("j", gcl.C(0)),
	).WithTag("doorway-done"))
	trialLoop(p, n, gcl.SetSelf("number", gcl.C(0)))
	return p.MustBuild()
}
