package specs

import "bakerypp/internal/gcl"

// BakeryPPSafe is Bakery++ specified over Lamport-"safe" registers — the
// register model of the original bakery paper, in which a read that
// overlaps a write may return any value in the register's domain.
//
// Modelling: every shared register x owned by process i gains a companion
// writing flag wx[i]. A write becomes two atomic steps — raise wx[i], then
// commit the value and lower wx[i] — and every read of x[j] by another
// process branches: if wx[j] = 0 the stored value is read; if wx[j] = 1 the
// read may return ANY value in [0, M] (one nondeterministic branch per
// value for value reads, and a may-pass branch for guard reads). A process
// reads its own registers reliably.
//
// Model checking this program therefore verifies Bakery++'s safety under
// the paper's weakest register assumption (Section 1.2, property 4) — a
// strictly stronger result than the atomic-step verification of E1, and
// one TLC-style atomic specs silently skip.
func BakeryPPSafe(n, m int) *gcl.Prog {
	p := gcl.New("bakerypp-safe", n)
	p.SetM(int64(m))
	p.SharedArray("choosing", n, 0)
	p.SharedArray("number", n, 0)
	p.SharedArray("wch", n, 0)  // writing flag for choosing
	p.SharedArray("wnum", n, 0) // writing flag for number
	p.Own("choosing")
	p.Own("number")
	p.Own("wch")
	p.Own("wnum")
	p.LocalVar("j", 0)
	p.LocalVar("tmp", 0)
	p.LocalVar("k", 0)
	// j is reset on the doorway-done commit (c2b), k on the scan seed
	// (m0); both are dead outside their loops.
	p.SetSymmetry(gcl.FullSymmetry)
	p.PidLocal("j", "t1", "t2", "t3", "t4")
	p.PidLocal("k", "m1", "m2")

	j := gcl.L("j")
	k := gcl.L("k")
	tmp := gcl.L("tmp")
	numI := gcl.ShSelf("number") // own register: reliable read

	// writeSplit emits the two-step safe write x[i] := v: raise the flag,
	// then commit and lower it, with extra assignments riding the commit.
	writeSplit := func(labelA, labelB, varName, flagName string, v gcl.Expr, next string, tag string, extra ...gcl.Assign) {
		br := gcl.Goto(labelB, gcl.SetSelf(flagName, gcl.C(1)))
		if tag != "" {
			br = br.WithTag(tag)
		}
		p.Label(labelA, br)
		eff := append([]gcl.Assign{
			gcl.SetSelf(varName, v),
			gcl.SetSelf(flagName, gcl.C(0)),
		}, extra...)
		p.Label(labelB, gcl.Goto(next, eff...))
	}

	p.Label("ncs", gcl.Goto("l1").WithTag("try"))

	// L1 gate: for each q, either the stored value is below M, or q is
	// mid-write and the flickered read may come back below M.
	p.Label("l1", gcl.Br(
		gcl.AndN(n, func(q int) gcl.Expr {
			return gcl.Or(
				gcl.Eq(gcl.ShI("wnum", gcl.C(q)), gcl.C(1)),
				gcl.Lt(gcl.ShI("number", gcl.C(q)), gcl.C(m)),
			)
		}),
		"c1a",
	))

	writeSplit("c1a", "c1b", "choosing", "wch", gcl.C(1), "m0", "")

	// Fine-grained maximum scan with flicker on every cell read.
	p.Label("m0", gcl.Goto("m1", gcl.SetL("tmp", gcl.C(0)), gcl.SetL("k", gcl.C(0))))
	p.Label("m1",
		gcl.Br(gcl.Lt(k, gcl.C(n)), "m2"),
		gcl.Br(gcl.Ge(k, gcl.C(n)), "n1a"),
	)
	scan := []gcl.Branch{
		// Quiescent cell: read the stored value.
		gcl.Br(gcl.Eq(gcl.ShI("wnum", k), gcl.C(0)), "m1",
			gcl.SetL("tmp", gcl.Max2(tmp, gcl.ShI("number", k))),
			gcl.SetL("k", gcl.Add(k, gcl.C(1)))),
	}
	// Cell mid-write: the read returns an arbitrary value in [0, M].
	for v := 0; v <= m; v++ {
		scan = append(scan, gcl.Br(gcl.Eq(gcl.ShI("wnum", k), gcl.C(1)), "m1",
			gcl.SetL("tmp", gcl.Max2(tmp, gcl.C(v))),
			gcl.SetL("k", gcl.Add(k, gcl.C(1)))))
	}
	p.Label("m2", scan...)

	writeSplit("n1a", "n1b", "number", "wnum", tmp, "chk", "")

	p.Label("chk",
		gcl.Br(gcl.Ge(tmp, gcl.C(m)), "rsa"),
		gcl.Br(gcl.Lt(tmp, gcl.C(m)), "i1a"),
	)
	writeSplit("i1a", "i1b", "number", "wnum", gcl.Add(tmp, gcl.C(1)), "c2a", "")
	writeSplit("rsa", "rsb", "number", "wnum", gcl.C(0), "rsc", "reset")
	writeSplit("rsc", "rsd", "choosing", "wch", gcl.C(0), "l1", "")
	writeSplit("c2a", "c2b", "choosing", "wch", gcl.C(0), "t1", "doorway-done",
		gcl.SetL("j", gcl.C(0)))

	p.Label("t1",
		gcl.Br(gcl.Ge(j, gcl.C(n)), "cs").WithTag("cs-enter"),
		gcl.Br(gcl.Lt(j, gcl.C(n)), "t2"),
	)
	// L2: pass when choosing[j] is reliably 0, or when j is mid-write and
	// the flickered read may return 0.
	p.Label("t2", gcl.Br(
		gcl.Or(
			gcl.And(gcl.Eq(gcl.ShI("wch", j), gcl.C(0)), gcl.Eq(gcl.ShI("choosing", j), gcl.C(0))),
			gcl.Eq(gcl.ShI("wch", j), gcl.C(1)),
		),
		"t3",
	))
	// L3: pass when the reliable read satisfies the bakery condition, or
	// when number[j] is mid-write (the flicker may return 0).
	numJ := gcl.ShI("number", j)
	p.Label("t3", gcl.Br(
		gcl.Or(
			gcl.And(
				gcl.Eq(gcl.ShI("wnum", j), gcl.C(0)),
				gcl.Or(gcl.Eq(numJ, gcl.C(0)), gcl.Not(gcl.LexLt(numJ, j, numI, gcl.Self()))),
			),
			gcl.Eq(gcl.ShI("wnum", j), gcl.C(1)),
		),
		"t4",
	))
	p.Label("t4", gcl.Goto("t1", gcl.SetL("j", gcl.Add(j, gcl.C(1)))))
	p.Label("cs", gcl.Goto("x1a").WithTag("cs-exit"))
	writeSplit("x1a", "x1b", "number", "wnum", gcl.C(0), "ncs", "")
	return p.MustBuild()
}
