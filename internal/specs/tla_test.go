package specs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpecParityWithTLA keeps the shipped PlusCal artifacts (spec/*.tla)
// structurally in sync with the Go specifications: every control label of
// the Go program appears as a PlusCal label, and the PlusCal files mention
// the two checked properties.
func TestSpecParityWithTLA(t *testing.T) {
	cases := []struct {
		file string
		// labels of the Go spec that must appear in the PlusCal source;
		// Go-only bookkeeping labels are mapped where PlusCal merges them.
		labels []string
	}{
		{"BakeryPP.tla", []string{"ncs:", "l1:", "ch1:", "ch2:", "chk:", "rst:", "ch3:", "t1:", "t2:", "t3:", "t4:", "cs:"}},
		{"Bakery.tla", []string{"ncs:", "ch1:", "ch2:", "ch3:", "t1:", "t2:", "t3:", "t4:", "cs:"}},
	}
	for _, c := range cases {
		path := filepath.Join("..", "..", "spec", c.file)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("PlusCal artifact missing: %v", err)
		}
		text := string(raw)
		for _, label := range c.labels {
			if !strings.Contains(text, label) {
				t.Errorf("%s: PlusCal label %q missing", c.file, label)
			}
		}
		for _, prop := range []string{"MutualExclusion", "NoOverflow"} {
			if !strings.Contains(text, prop) {
				t.Errorf("%s: property %s missing", c.file, prop)
			}
		}
	}
}

// The Go Bakery++ spec's label set matches the PlusCal module's label list
// (modulo PlusCal's merged exit label).
func TestGoLabelsCoverPlusCal(t *testing.T) {
	p := BakeryPP(Config{N: 2, M: 3})
	want := map[string]bool{}
	for _, l := range p.Labels() {
		want[l] = true
	}
	for _, l := range []string{"ncs", "l1", "ch1", "ch2", "chk", "rst", "ch3", "t1", "t2", "t3", "t4", "cs"} {
		if !want[l] {
			t.Errorf("Go spec lacks label %q used in the PlusCal artifact", l)
		}
	}
}
