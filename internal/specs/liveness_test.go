package specs

import "testing"

// The mechanical liveness declarations match each spec's actual shape:
// every registered algorithm carries the FCFS monitor tags and cs-enter,
// and exactly the gated Bakery++ variants expose a starve-at label.
func TestLivenessOf(t *testing.T) {
	for _, name := range Names() {
		p, err := Get(name, Config{N: 3, M: 2})
		if err != nil {
			t.Fatal(err)
		}
		l := LivenessOf(p)
		if !l.FCFS {
			t.Errorf("%s: FCFS tags missing", name)
		}
		if !l.NoProgress {
			t.Errorf("%s: cs-enter tag missing", name)
		}
		wantStarve := ""
		if name == "bakerypp" {
			wantStarve = "l1"
		}
		if l.StarveAt != wantStarve {
			t.Errorf("%s: StarveAt = %q, want %q", name, l.StarveAt, wantStarve)
		}
	}
	nogate := BakeryPP(Config{N: 3, M: 2, NoGate: true})
	if got := LivenessOf(nogate).StarveAt; got != "" {
		t.Errorf("nogate variant: StarveAt = %q, want none", got)
	}
	safe := BakeryPPSafe(2, 2)
	if got := LivenessOf(safe).StarveAt; got != "l1" {
		t.Errorf("safe variant: StarveAt = %q, want l1", got)
	}
}
