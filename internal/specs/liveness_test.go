package specs

import (
	"testing"

	"bakerypp/internal/gcl"
)

// The mechanical liveness declarations match each spec's actual shape:
// every registered algorithm carries the FCFS monitor tags and cs-enter,
// and exactly the gated Bakery++ variants expose a starve-at label.
func TestLivenessOf(t *testing.T) {
	for _, name := range Names() {
		p, err := Get(name, Config{N: 3, M: 2})
		if err != nil {
			t.Fatal(err)
		}
		l := LivenessOf(p)
		if !l.FCFS {
			t.Errorf("%s: FCFS tags missing", name)
		}
		if !l.NoProgress {
			t.Errorf("%s: cs-enter tag missing", name)
		}
		wantStarve := ""
		if name == "bakerypp" {
			wantStarve = "l1"
		}
		if l.StarveAt != wantStarve {
			t.Errorf("%s: StarveAt = %q, want %q", name, l.StarveAt, wantStarve)
		}
	}
	nogate := BakeryPP(Config{N: 3, M: 2, NoGate: true})
	if got := LivenessOf(nogate).StarveAt; got != "" {
		t.Errorf("nogate variant: StarveAt = %q, want none", got)
	}
	safe := BakeryPPSafe(2, 2)
	if got := LivenessOf(safe).StarveAt; got != "l1" {
		t.Errorf("safe variant: StarveAt = %q, want l1", got)
	}
}

// Every registered algorithm can back the lock-service scenario layer,
// and a program missing the monitor tags cannot — the gate
// internal/scenario's spec validation rests on.
func TestArbitrable(t *testing.T) {
	for _, name := range Names() {
		p, err := Get(name, Config{N: 3, M: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !Arbitrable(p) {
			t.Errorf("%s: not arbitrable despite carrying the full tag set", name)
		}
	}
	bare := taglessToggle()
	if Arbitrable(bare) {
		t.Error("a program with no branch tags passed Arbitrable")
	}
}

// taglessToggle is a well-formed two-label program with no branch tags
// at all: structurally fine, observationally useless to the scenario
// accumulator.
func taglessToggle() *gcl.Prog {
	p := gcl.New("tagless", 2)
	p.Label("ncs", gcl.Goto("cs"))
	p.Label("cs", gcl.Goto("ncs"))
	p.MustBuild()
	return p
}
