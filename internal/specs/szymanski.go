package specs

import "bakerypp/internal/gcl"

// Szymanski is Szymanski's first-come-first-served mutual-exclusion
// algorithm (Jerusalem Conference on Information Technology, 1990), which
// the paper's Section 4 describes as "much more complicated than Bakery++"
// while using bounded per-process registers (flag[i] in 0..4).
//
//	p1: flag[i] := 1                          // intending to enter
//	p2: wait until all flag[j] < 3            // waiting-room door open
//	p3: flag[i] := 3                          // in the waiting room
//	p4: if some flag[j] = 1 then
//	        flag[i] := 2                      // step back for latecomers
//	        wait until some flag[j] = 4
//	    flag[i] := 4                          // door closed, committed
//	p6: wait until all flag[j < i] < 2        // lower-id processes first
//	    critical section
//	p7: wait until all flag[j > i] in {0,1,4} // let the room drain
//	    flag[i] := 0
//
// The five-valued flags bound every register by 4 regardless of N —
// bounded, like Bakery++, but with a considerably subtler protocol (the
// model checker's state counts in EXPERIMENTS.md quantify that remark).
func Szymanski(n int) *gcl.Prog {
	p := gcl.New("szymanski", n)
	p.SetM(4)
	p.SharedArray("flag", n, 0)
	p.Own("flag")
	// The shared state is one owned flag per process and there are no
	// pid-valued locals, so canonicalization takes the sorted-column fast
	// path. The id-ordered room draining (s7/s8 guards) makes the spec
	// quasi-symmetric, exactly like the bakery tie-break.
	p.SetSymmetry(gcl.FullSymmetry)

	flag := func(q int) gcl.Expr { return gcl.ShI("flag", gcl.C(q)) }

	p.Label("ncs", gcl.Goto("s1").WithTag("try"))
	// The flag := 1 announcement is the algorithm's only wait-free prefix,
	// so it serves as the doorway marker for FCFS measurement. Szymanski's
	// service order is waiting-room batches drained in id order, which is
	// FCFS only up to batch-internal id reordering — mc.CheckFCFS exhibits
	// the reorder, and EXPERIMENTS.md E6 quantifies it.
	p.Label("s1", gcl.Goto("s2", gcl.SetSelf("flag", gcl.C(1))).WithTag("doorway-done"))
	p.Label("s2", gcl.Br(
		gcl.AndN(n, func(q int) gcl.Expr { return gcl.Lt(flag(q), gcl.C(3)) }),
		"s3",
	))
	p.Label("s3", gcl.Goto("s4", gcl.SetSelf("flag", gcl.C(3))))
	hasIntender := gcl.OrN(n, func(q int) gcl.Expr { return gcl.Eq(flag(q), gcl.C(1)) })
	p.Label("s4",
		gcl.Br(hasIntender, "s5"),
		gcl.Br(gcl.Not(hasIntender), "s7", gcl.SetSelf("flag", gcl.C(4))),
	)
	p.Label("s5", gcl.Goto("s6", gcl.SetSelf("flag", gcl.C(2))))
	p.Label("s6", gcl.Br(
		gcl.OrN(n, func(q int) gcl.Expr { return gcl.Eq(flag(q), gcl.C(4)) }),
		"s7",
		gcl.SetSelf("flag", gcl.C(4)),
	))
	// Lower-numbered processes leave the waiting room first.
	p.Label("s7", gcl.Br(
		gcl.AndN(n, func(q int) gcl.Expr {
			return gcl.Or(
				gcl.Ge(gcl.C(q), gcl.Self()),
				gcl.Lt(flag(q), gcl.C(2)),
			)
		}),
		"cs",
	).WithTag("cs-enter"))
	p.Label("cs", gcl.Goto("s8").WithTag("cs-exit"))
	// Exit: wait until no higher-id process is in states 2..3, then reset.
	p.Label("s8", gcl.Br(
		gcl.AndN(n, func(q int) gcl.Expr {
			return gcl.Or(
				gcl.Le(gcl.C(q), gcl.Self()),
				gcl.Or(gcl.Lt(flag(q), gcl.C(2)), gcl.Gt(flag(q), gcl.C(3))),
			)
		}),
		"ncs",
		gcl.SetSelf("flag", gcl.C(0)),
	))
	return p.MustBuild()
}
