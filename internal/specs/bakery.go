package specs

import "bakerypp/internal/gcl"

// Bakery is Algorithm 1 of the paper: Lamport's original bakery algorithm
// for cfg.N processes, assuming ideal unbounded registers. cfg.M sets the
// register capacity used only for overflow *accounting*: the algorithm
// itself never looks at M, which is exactly why it overflows (paper
// Section 3: "number[i] := 1 + maximum(...)" is unchecked).
//
//	L1: choosing[i] := 1
//	    number[i] := 1 + maximum(number[0], ..., number[N-1])
//	    choosing[i] := 0
//	    for j = 0 .. N-1:
//	L2:   if choosing[j] != 0 then goto L2
//	L3:   if number[j] != 0 and (number[j], j) < (number[i], i) then goto L3
//	    critical section
//	    number[i] := 0
//
// With cfg.Fine, the maximum is read one register per atomic step (the
// prose's "the maximum function can take its argument in any arbitrary
// order" allows any serialisation; fine granularity admits them all).
func Bakery(cfg Config) *gcl.Prog {
	n, m := cfg.N, cfg.M
	name := "bakery"
	if cfg.Fine {
		name = "bakery-fine"
	}
	p := gcl.New(name, n)
	p.SetM(int64(m))
	p.SharedArray("choosing", n, 0)
	p.SharedArray("number", n, 0)
	p.Own("choosing")
	p.Own("number")
	p.LocalVar("j", 0)
	if cfg.Fine {
		p.LocalVar("tmp", 0)
		p.LocalVar("k", 0)
	}
	// Process identities appear only as indices into the owned arrays and
	// as the trial/scan cursors, so the spec declares full symmetry; the
	// (number, id) tie-break makes it quasi-symmetric, which the checker's
	// dedup-only reduction is built for (docs/model-checking.md). The
	// cursors are live only inside their loops: j is reset at ch3 before
	// the trial loop, k at ch2 before the scan, so the stale values
	// elsewhere are normalized out of canonical keys.
	p.SetSymmetry(gcl.FullSymmetry)
	p.PidLocal("j", "t1", "t2", "t3", "t4")
	if cfg.Fine {
		p.PidLocal("k", "m1", "m2")
	}

	p.Label("ncs", gcl.Goto("ch1").WithTag("try"))
	p.Label("ch1", gcl.Goto("ch2", gcl.SetSelf("choosing", gcl.C(1))))
	if cfg.Fine {
		// ch2 seeds the scan, m1/m2 fold in one register per step, and
		// ch2w stores 1 + tmp.
		p.Label("ch2", gcl.Goto("m1", gcl.SetL("tmp", gcl.C(0)), gcl.SetL("k", gcl.C(0))))
		fineMax(p, n, "ch2w")
		p.Label("ch2w", gcl.Goto("ch3",
			gcl.SetSelf("number", gcl.Add(gcl.C(1), gcl.L("tmp")))))
	} else {
		p.Label("ch2", gcl.Goto("ch3",
			gcl.SetSelf("number", gcl.Add(gcl.C(1), gcl.MaxSh("number")))))
	}
	p.Label("ch3", gcl.Goto("t1",
		gcl.SetSelf("choosing", gcl.C(0)),
		gcl.SetL("j", gcl.C(0)),
	).WithTag("doorway-done"))
	trialLoop(p, n, gcl.SetSelf("number", gcl.C(0)))
	return p.MustBuild()
}
