package specs

import "bakerypp/internal/gcl"

// BlackWhite is Taubenfeld's Black-White Bakery algorithm (DISC 2004), the
// paper's Section 4 representative of approach 2 ("introducing new shared
// variables"): one extra shared colour bit plus a per-process colour
// register bound the tickets by N, at the cost of a register (color) that
// every process writes — violating the no-writes-to-others'-memory property
// Bakery++ preserves.
//
//	choosing[i] := 1
//	mycolor[i] := color
//	number[i] := 1 + max{number[j] : mycolor[j] = mycolor[i]}
//	choosing[i] := 0
//	for j = 0 .. N-1:
//	    wait until choosing[j] = 0
//	    if mycolor[j] = mycolor[i]:
//	        wait until number[j] = 0 or (number[i],i) <= (number[j],j)
//	                or mycolor[j] != mycolor[i]
//	    else:
//	        wait until number[j] = 0 or mycolor[i] != color
//	                or mycolor[j] = mycolor[i]
//	critical section
//	color := 1 - mycolor[i]; number[i] := 0
//
// Tickets never exceed N, so the program's M is N: the model checker proves
// the same no-overflow invariant Bakery++ has, with a bound independent of
// register width.
func BlackWhite(n int) *gcl.Prog {
	p := gcl.New("blackwhite", n)
	p.SetM(int64(n))
	p.SharedVar("color", 0)
	p.SharedArray("choosing", n, 0)
	p.SharedArray("mycolor", n, 0)
	p.SharedArray("number", n, 0)
	p.Own("choosing")
	p.Own("mycolor")
	p.Own("number")
	p.LocalVar("j", 0)
	// Declared asymmetric (gcl.NoSymmetry, the default): mixed-colour
	// waiting batches drain in concrete id order through both the ticket
	// tie-break and the global colour register, so this spec opts out of
	// symmetry reduction and serves as the declared-asymmetric control —
	// see specs.Symmetric.
	p.SetSymmetry(gcl.NoSymmetry)

	j := gcl.L("j")
	numI := gcl.ShSelf("number")
	numJ := gcl.ShI("number", j)
	colI := gcl.ShSelf("mycolor")
	colJ := gcl.ShI("mycolor", j)
	sameColor := gcl.Eq(colJ, colI)

	p.Label("ncs", gcl.Goto("ch1").WithTag("try"))
	p.Label("ch1", gcl.Goto("ch2", gcl.SetSelf("choosing", gcl.C(1))))
	p.Label("ch2", gcl.Goto("ch3", gcl.SetSelf("mycolor", gcl.Sh("color"))))
	p.Label("ch3", gcl.Goto("ch4",
		gcl.SetSelf("number", gcl.Add(gcl.C(1), gcl.MaxN(n, func(q int) (gcl.Expr, gcl.Expr) {
			return gcl.Eq(gcl.ShI("mycolor", gcl.C(q)), colI), gcl.ShI("number", gcl.C(q))
		}))),
	))
	p.Label("ch4", gcl.Goto("t1",
		gcl.SetSelf("choosing", gcl.C(0)),
		gcl.SetL("j", gcl.C(0)),
	).WithTag("doorway-done"))

	p.Label("t1",
		gcl.Br(gcl.Ge(j, gcl.C(n)), "cs").WithTag("cs-enter"),
		gcl.Br(gcl.Lt(j, gcl.C(n)), "t2"),
	)
	p.Label("t2",
		gcl.Br(gcl.Eq(gcl.ShI("choosing", j), gcl.C(0)), "t3"),
	)
	// One await whose guard covers both colour cases; mycolor[j] is
	// re-read on every evaluation, so a colour change by j unblocks i just
	// as the algorithm's nested waits do.
	p.Label("t3",
		gcl.Br(gcl.Or(
			gcl.And(sameColor, gcl.Or(
				gcl.Eq(numJ, gcl.C(0)),
				gcl.Not(gcl.LexLt(numJ, j, numI, gcl.Self())),
			)),
			gcl.And(gcl.Not(sameColor), gcl.Or(
				gcl.Eq(numJ, gcl.C(0)),
				gcl.Ne(colI, gcl.Sh("color")),
			)),
		), "t4"),
	)
	p.Label("t4", gcl.Goto("t1", gcl.SetL("j", gcl.Add(j, gcl.C(1)))))
	p.Label("cs", gcl.Goto("ncs",
		gcl.Set("color", gcl.Sub(gcl.C(1), colI)),
		gcl.SetSelf("number", gcl.C(0)),
	).WithTag("cs-exit"))
	return p.MustBuild()
}
