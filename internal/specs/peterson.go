package specs

import "bakerypp/internal/gcl"

// Peterson is the N-process filter generalisation of Peterson's algorithm,
// the paper's Section 4 contrast: it is bounded by construction (level and
// victim hold values at most N) but the victim registers are written by
// every competing process, unlike Bakery/Bakery++ where each process writes
// only its own memory. It is not first-come-first-served.
//
//	for l = 1 .. N-1:
//	    level[i] := l
//	    victim[l] := i
//	    wait until (for all k != i: level[k] < l) or victim[l] != i
//	critical section
//	level[i] := 0
//
// level[i] = 0 means "not competing"; victim cells store pid+1 with 0
// meaning "none yet" to keep the state vector non-negative.
func Peterson(n int) *gcl.Prog {
	p := gcl.New("peterson", n)
	p.SetM(int64(n))
	p.SharedArray("level", n, 0)
	// victim[1..n-1] used; cell 0 is dead weight kept for addressing.
	p.SharedArray("victim", n, 0)
	p.Own("level")
	p.LocalVar("l", 1)
	// Declared asymmetric (gcl.NoSymmetry, the default): the victim cells
	// are level-indexed registers holding pid+1 VALUES, a shared-cell
	// value remapping the canonical layer deliberately does not model —
	// see specs.Symmetric.
	p.SetSymmetry(gcl.NoSymmetry)

	l := gcl.L("l")

	p.Label("ncs", gcl.Goto("f1", gcl.SetL("l", gcl.C(1))).WithTag("try"))
	p.Label("f1",
		gcl.Br(gcl.Ge(l, gcl.C(n)), "cs").WithTag("cs-enter"),
		gcl.Br(gcl.Lt(l, gcl.C(n)), "f2"),
	)
	p.Label("f2", gcl.Goto("f3", gcl.SetI("level", gcl.Self(), l)))
	// The filter lock has no wait-free doorway; for FCFS measurement the
	// first announcement (level and victim published at level 1) is taken
	// as the doorway, and sched records only the first "doorway-done" per
	// attempt. Inversions relative to it are exactly the overtaking the
	// paper's Section 4 contrasts with Bakery's FCFS order.
	p.Label("f3", gcl.Goto("f4",
		gcl.SetI("victim", l, gcl.Add(gcl.Self(), gcl.C(1)))).WithTag("doorway-done"))
	p.Label("f4",
		gcl.Br(gcl.Or(
			gcl.AndN(n, func(k int) gcl.Expr {
				return gcl.Or(
					gcl.Eq(gcl.Self(), gcl.C(k)),
					gcl.Lt(gcl.ShI("level", gcl.C(k)), l),
				)
			}),
			gcl.Ne(gcl.ShI("victim", l), gcl.Add(gcl.Self(), gcl.C(1))),
		), "f5"),
	)
	p.Label("f5", gcl.Goto("f1", gcl.SetL("l", gcl.Add(l, gcl.C(1)))))
	p.Label("cs", gcl.Goto("ncs", gcl.SetSelf("level", gcl.C(0))).WithTag("cs-exit"))
	return p.MustBuild()
}
