package specs

import (
	"strings"
	"testing"

	"bakerypp/internal/gcl"
)

func allSpecs(n, m int) []*gcl.Prog {
	return []*gcl.Prog{
		Bakery(Config{N: n, M: m}),
		Bakery(Config{N: n, M: m, Fine: true}),
		BakeryPP(Config{N: n, M: m}),
		BakeryPP(Config{N: n, M: m, Fine: true}),
		BakeryPP(Config{N: n, M: m, SplitReset: true}),
		BakeryPP(Config{N: n, M: m, EqCheck: true}),
		BakeryPP(Config{N: n, M: m, NoGate: true}),
		BlackWhite(n),
		Peterson(n),
		Szymanski(n),
		ModBakery(n, m),
	}
}

// Every specification follows the package conventions the checker and the
// simulator rely on.
func TestConventions(t *testing.T) {
	for _, p := range allSpecs(3, 4) {
		if p.Labels()[0] != "ncs" {
			t.Errorf("%s: first label is %q, want ncs", p.Name, p.Labels()[0])
		}
		if !p.HasLabel("cs") {
			t.Errorf("%s: no cs label", p.Name)
		}
		if p.M <= 0 {
			t.Errorf("%s: M not set", p.Name)
		}
		tags := p.BranchTags()
		for _, want := range []string{"try", "cs-enter", "cs-exit"} {
			if tags[want] == 0 {
				t.Errorf("%s: no branch tagged %q", p.Name, want)
			}
		}
	}
}

func TestBakeryFamilyHasDoorwayTag(t *testing.T) {
	for _, p := range allSpecs(2, 3) {
		if p.Name == "szymanski" {
			continue // measured relative to its waiting room, untagged
		}
		if p.BranchTags()["doorway-done"] == 0 {
			t.Errorf("%s: no doorway-done tag", p.Name)
		}
	}
}

func TestBakeryPPVariantNaming(t *testing.T) {
	cases := map[string]Config{
		"bakerypp":            {N: 2, M: 3},
		"bakerypp-fine":       {N: 2, M: 3, Fine: true},
		"bakerypp-splitreset": {N: 2, M: 3, SplitReset: true},
		"bakerypp-eqcheck":    {N: 2, M: 3, EqCheck: true},
		"bakerypp-nogate":     {N: 2, M: 3, NoGate: true},
	}
	for want, cfg := range cases {
		if got := BakeryPP(cfg).Name; got != want {
			t.Errorf("BakeryPP(%+v).Name = %q, want %q", cfg, got, want)
		}
	}
}

func TestResetTagOnlyInBakeryPP(t *testing.T) {
	if BakeryPP(Config{N: 2, M: 3}).BranchTags()["reset"] == 0 {
		t.Error("bakerypp missing reset tag")
	}
	if Bakery(Config{N: 2, M: 3}).BranchTags()["reset"] != 0 {
		t.Error("classic bakery must have no reset branch")
	}
}

func TestGetRegistry(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names() = %v, want 6 entries", names)
	}
	for _, name := range names {
		p, err := Get(name, Config{})
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if p.N != 2 {
			t.Errorf("Get(%q) default N = %d, want 2", name, p.N)
		}
	}
	if _, err := Get("nonesuch", Config{}); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("Get(nonesuch) err = %v", err)
	}
}

func TestGetHonoursConfig(t *testing.T) {
	p, err := Get("bakerypp", Config{N: 4, M: 9})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 4 || p.M != 9 {
		t.Errorf("N=%d M=%d, want 4/9", p.N, p.M)
	}
}

// The space table (E8): shared register cells per algorithm are exactly
// what the paper's Section 4/7 comparisons cite — Bakery/Bakery++ use 2N
// cells, Black-White 3N+1, Peterson 2N, Szymanski N.
func TestSharedCellCounts(t *testing.T) {
	n := 5
	cases := []struct {
		p    *gcl.Prog
		want int
	}{
		{Bakery(Config{N: n, M: 4}), 2 * n},
		{BakeryPP(Config{N: n, M: 4}), 2 * n},
		{BlackWhite(n), 3*n + 1},
		{Peterson(n), 2 * n},
		{Szymanski(n), n},
	}
	for _, c := range cases {
		if got := c.p.SharedCells(); got != c.want {
			t.Errorf("%s: %d shared cells, want %d", c.p.Name, got, c.want)
		}
	}
}

// Bakery++'s extra conditionals add exactly three labels over classic
// Bakery in the coarse encoding — "almost identical to Bakery" (Section 5),
// now countable.
func TestBakeryPPIsSmallDelta(t *testing.T) {
	b := Bakery(Config{N: 3, M: 4})
	bpp := BakeryPP(Config{N: 3, M: 4})
	delta := len(bpp.Labels()) - len(b.Labels())
	if delta != 3 {
		t.Errorf("label delta = %d, want 3 (the l1 gate, the chk conditional, the rst reset)", delta)
	}
	if bpp.SharedCells() != b.SharedCells() {
		t.Error("Bakery++ must not add shared variables (Section 5)")
	}
}

// Initial states are all-zero except Peterson's local level counter.
func TestInitialStates(t *testing.T) {
	for _, p := range allSpecs(2, 3) {
		s := p.InitState()
		for _, name := range p.SharedNames() {
			for i := 0; i < p.SharedSize(name); i++ {
				if v := p.Shared(s, name, i); v != 0 {
					t.Errorf("%s: %s[%d] = %d initially, want 0", p.Name, name, i, v)
				}
			}
		}
	}
}
