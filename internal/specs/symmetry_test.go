package specs

// Table-driven symmetry contract over the whole spec matrix at N <= 4:
// declared groups match the registry, and for every symmetric spec the
// canonical fingerprint is invariant under every valid process permutation
// of every sampled reachable state (the satellite contract behind the
// model checker's symmetry-reduced visited store).

import (
	"testing"

	"bakerypp/internal/gcl"
)

// sampleStates walks the reachable states breadth-first (exact dedup via
// fingerprint + Equal) and returns up to limit of them.
func sampleStates(p *gcl.Prog, limit int) []gcl.State {
	seen := map[uint64][]gcl.State{}
	dup := func(s gcl.State) bool {
		for _, t := range seen[s.Fingerprint()] {
			if t.Equal(s) {
				return true
			}
		}
		return false
	}
	states := []gcl.State{p.InitState()}
	seen[states[0].Fingerprint()] = states[:1]
	for head := 0; head < len(states) && len(states) < limit; head++ {
		for _, sc := range p.AllSuccs(states[head], gcl.ModeUnbounded) {
			if dup(sc.State) {
				continue
			}
			fp := sc.State.Fingerprint()
			seen[fp] = append(seen[fp], sc.State)
			states = append(states, sc.State)
			if len(states) >= limit {
				break
			}
		}
	}
	return states
}

// permutations of 0..n-1, brute force.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			perm := make([]int, 0, n)
			perm = append(perm, sub[:pos]...)
			perm = append(perm, n-1)
			perm = append(perm, sub[pos:]...)
			out = append(out, perm)
		}
	}
	return out
}

func TestDeclaredSymmetry(t *testing.T) {
	// The expected group per spec — a tripwire so a new or edited spec
	// states its symmetry deliberately (see the Symmetric doc comment for
	// why black-white and peterson opt out).
	want := map[string]bool{
		"bakery":     true,
		"bakerypp":   true,
		"modbakery":  true,
		"szymanski":  true,
		"blackwhite": false,
		"peterson":   false,
	}
	for _, name := range Names() {
		wantFull, known := want[name]
		if !known {
			t.Errorf("%s: new spec not classified in the symmetry expectation table", name)
			continue
		}
		if got := Symmetric(name); got != wantFull {
			t.Errorf("Symmetric(%q) = %v, want %v", name, got, wantFull)
		}
		p, err := Get(name, Config{N: 3, M: 2})
		if err != nil {
			t.Fatal(err)
		}
		if wantFull && !p.CanCanonicalize() {
			t.Errorf("%s: symmetric spec cannot canonicalize at N=3", name)
		}
	}
}

// TestCanonicalFingerprintInvariance sweeps every symmetric spec at
// N in {2, 3, 4}: for each sampled reachable state and every permutation
// valid for its normalized form, the canonical fingerprint must not
// change, and the witnessing permutation must map the normalized state
// onto the canonical form.
func TestCanonicalFingerprintInvariance(t *testing.T) {
	builds := []struct {
		name string
		mk   func(n int) *gcl.Prog
	}{
		{"bakery", func(n int) *gcl.Prog { return Bakery(Config{N: n, M: 2}) }},
		{"bakery-fine", func(n int) *gcl.Prog { return Bakery(Config{N: n, M: 2, Fine: true}) }},
		{"bakerypp", func(n int) *gcl.Prog { return BakeryPP(Config{N: n, M: 2}) }},
		{"bakerypp-fine", func(n int) *gcl.Prog { return BakeryPP(Config{N: n, M: 2, Fine: true}) }},
		{"bakerypp-safe", func(n int) *gcl.Prog { return BakeryPPSafe(n, 2) }},
		{"modbakery", func(n int) *gcl.Prog { return ModBakery(n, 2) }},
		{"szymanski", Szymanski},
	}
	for _, b := range builds {
		for _, n := range []int{2, 3, 4} {
			p := b.mk(n)
			if !p.CanCanonicalize() {
				t.Fatalf("%s N=%d: expected canonicalization support", b.name, n)
			}
			perms := permutations(n)
			limit := 400
			if n == 4 {
				limit = 150 // 24 perms per state; keep the sweep quick
			}
			for _, s := range sampleStates(p, limit) {
				want := p.CanonicalFingerprint(s)
				norm := p.NormalizeCursors(s)
				for _, perm := range perms {
					if !p.PermValid(norm, perm) {
						continue
					}
					img := p.Permute(norm, perm)
					if got := p.CanonicalFingerprint(img); got != want {
						t.Fatalf("%s N=%d: canonical fingerprint varies under perm %v of state %s",
							b.name, n, perm, p.Format(s))
					}
				}
				canon, perm := p.CanonicalizeWithPerm(s)
				if !p.Permute(norm, perm).Equal(canon) {
					t.Fatalf("%s N=%d: witnessing permutation does not reproduce the canonical form", b.name, n)
				}
			}
		}
	}
}

// TestAsymmetricSpecsDoNotCanonicalize pins the opt-outs: the declared
// NoSymmetry specs must refuse canonicalization so the checker falls back
// to the full search.
func TestAsymmetricSpecsDoNotCanonicalize(t *testing.T) {
	for _, p := range []*gcl.Prog{BlackWhite(3), Peterson(3)} {
		if p.CanCanonicalize() {
			t.Errorf("%s: declared-asymmetric spec must not canonicalize", p.Name)
		}
	}
}
