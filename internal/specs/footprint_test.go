package specs

// Commutation oracle over the real specifications: for every registered
// algorithm at a small size, walk a bounded prefix of the reachable states
// and, for each pair of enabled successors of different processes that
// gcl.ActionsIndependent declares independent, execute both orders and
// assert they reach the same state. This pins the soundness direction of
// the footprint analysis on exactly the programs the model checker's
// partial-order reduction runs on.

import (
	"testing"

	"bakerypp/internal/gcl"
)

func TestSpecCommutationOracle(t *testing.T) {
	progs := []*gcl.Prog{
		Bakery(Config{N: 3, M: 3}),
		BakeryPP(Config{N: 3, M: 2}),
		BakeryPP(Config{N: 2, M: 2, Fine: true}),
		BakeryPPSafe(2, 2),
		ModBakery(3, 2),
		Szymanski(3),
		Peterson(3),
		BlackWhite(3),
	}
	const maxStates = 3000
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			checked := 0
			queue := []gcl.State{p.InitState()}
			seen := map[string]bool{p.Key(queue[0]): true}
			for head := 0; head < len(queue) && len(queue) < maxStates; head++ {
				s := queue[head]
				succs := p.AllSuccs(s, gcl.ModeUnbounded)
				for _, sc := range succs {
					if k := p.Key(sc.State); !seen[k] {
						seen[k] = true
						queue = append(queue, sc.State)
					}
				}
				for i := 0; i < len(succs); i++ {
					for k := i + 1; k < len(succs); k++ {
						a, b := succs[i], succs[k]
						if a.Pid == b.Pid {
							continue
						}
						la, lb := int(a.LabelIdx), int(b.LabelIdx)
						if !p.ActionsIndependent(a.Pid, la, a.Branch, b.Pid, lb, b.Branch) {
							continue
						}
						ab, okAB := rerun(p, a.State, b)
						ba, okBA := rerun(p, b.State, a)
						if !okAB || !okBA {
							t.Fatalf("independent pair disabled the partner: p%d:%s/%d, p%d:%s/%d in %s",
								a.Pid, a.Label(p), a.Branch, b.Pid, b.Label(p), b.Branch, p.Format(s))
						}
						if !ab.State.Equal(ba.State) {
							t.Fatalf("independent pair does not commute: p%d:%s/%d, p%d:%s/%d\nstate: %s\na;b: %s\nb;a: %s",
								a.Pid, a.Label(p), a.Branch, b.Pid, b.Label(p), b.Branch,
								p.Format(s), p.Format(ab.State), p.Format(ba.State))
						}
						if ab.Overflow != b.Overflow || ba.Overflow != a.Overflow {
							t.Fatalf("independent partner changed overflow accounting (p%d:%s, p%d:%s)",
								a.Pid, a.Label(p), b.Pid, b.Label(p))
						}
						checked++
					}
				}
			}
			if checked == 0 {
				t.Fatalf("%s: oracle exercised no independent pairs", p.Name)
			}
			t.Logf("%s: %d independent pairs commuted over %d states", p.Name, checked, len(queue))
		})
	}
}

func rerun(p *gcl.Prog, s gcl.State, succ gcl.Succ) (gcl.Succ, bool) {
	for _, sc := range p.Succs(s, succ.Pid, gcl.ModeUnbounded, nil) {
		if sc.LabelIdx == succ.LabelIdx && sc.Branch == succ.Branch {
			return sc, true
		}
	}
	return gcl.Succ{}, false
}
