module bakerypp

go 1.22
